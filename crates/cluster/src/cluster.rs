//! The in-process distributed store: region servers, routing, coprocessor
//! dispatch, crash injection and master-driven recovery.
//!
//! This substrate plays the role HBase + HDFS + ZooKeeper play in the paper
//! (Figure 3): a table is partitioned into regions, each region is an LSM
//! tree hosted by a region server, a client library routes by key using a
//! cached partition map, and on server failure the master reassigns regions
//! whose state is recovered from durable storage (our "HDFS" is the shared
//! base directory) by WAL replay.

use crate::clock::TimestampOracle;
use crate::coproc::{ColumnValue, ReplayedOp, TableObserver};
use crate::encoding::{cell_key, decode_cell_key, escape_no_term, prefix_end, row_end, row_start};
use crate::error::{ClusterError, Result};
use crate::fanout::FanoutPool;
use crate::faults::FaultPlan;
use crate::keyspace::{PartitionMap, RegionId, RegionSpec, ServerId};
use bytes::Bytes;
use diff_index_lsm::{Cell, CellKind, LsmOptions, LsmTree, MetricsSnapshot, VersionedValue};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Process-global sabotage switch for the chaos harness: when set, epoch
/// fencing is disabled and [`Cluster::zombie_put`] *accepts* writes it should
/// reject — an end-to-end proof that the consistency checkers catch an
/// unfenced zombie write (lost acked write). Never set outside tests.
static DISABLE_FENCING: AtomicBool = AtomicBool::new(false);

/// Enable/disable the epoch-fencing sabotage (chaos-harness selftests only).
pub fn set_disable_fencing(disabled: bool) {
    DISABLE_FENCING.store(disabled, Ordering::SeqCst);
}

/// True if epoch fencing has been sabotaged via [`set_disable_fencing`].
pub fn fencing_disabled() -> bool {
    DISABLE_FENCING.load(Ordering::SeqCst)
}

/// One whole row: its key plus the visible `(column, value)` cells, as
/// returned by the grouped row scans.
pub type RowGroup = (Bytes, Vec<(Bytes, VersionedValue)>);

/// The kind of region-level operation being dispatched. Every dispatch
/// through the routing choke point is tagged with one of these — each would
/// be a network RPC to a region server in the real deployment, so the
/// per-op counters measure RPC cost instead of asserting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionOp {
    Put,
    Delete,
    RawPut,
    RawDelete,
    Get,
    GetRow,
    Scan,
}

#[derive(Default)]
struct DispatchCounters {
    puts: AtomicU64,
    deletes: AtomicU64,
    raw_puts: AtomicU64,
    raw_deletes: AtomicU64,
    gets: AtomicU64,
    get_rows: AtomicU64,
    scans: AtomicU64,
}

impl DispatchCounters {
    fn bump(&self, op: RegionOp) {
        let counter = match op {
            RegionOp::Put => &self.puts,
            RegionOp::Delete => &self.deletes,
            RegionOp::RawPut => &self.raw_puts,
            RegionOp::RawDelete => &self.raw_deletes,
            RegionOp::Get => &self.gets,
            RegionOp::GetRow => &self.get_rows,
            RegionOp::Scan => &self.scans,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> DispatchSnapshot {
        DispatchSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            raw_puts: self.raw_puts.load(Ordering::Relaxed),
            raw_deletes: self.raw_deletes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            get_rows: self.get_rows.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
        }
    }
}

/// Per-operation counts of region-level dispatches, derived from the real
/// routing path (not hand-maintained). Take a delta around an operation to
/// see its RPC decomposition — e.g. one sync-full update put shows as
/// 1 put + 1 get (the `RB(k, t−δ)` read-back) + 1 raw put + 1 raw delete,
/// matching Table 1's 3-RPC index-maintenance cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchSnapshot {
    /// Client puts (timestamped by the server, observers dispatched).
    pub puts: u64,
    /// Client deletes.
    pub deletes: u64,
    /// Index-maintenance puts at an explicit timestamp.
    pub raw_puts: u64,
    /// Index-maintenance deletes at an explicit timestamp.
    pub raw_deletes: u64,
    /// Point reads (versioned cell reads included).
    pub gets: u64,
    /// Whole-row reads.
    pub get_rows: u64,
    /// Per-region legs of grouped row scans.
    pub scans: u64,
}

impl DispatchSnapshot {
    /// All region-level operations.
    pub fn total(&self) -> u64 {
        self.puts
            + self.deletes
            + self.raw_puts
            + self.raw_deletes
            + self.gets
            + self.get_rows
            + self.scans
    }

    /// Region ops beyond the client's own base writes — as a delta around a
    /// write burst this is exactly the synchronous index-maintenance RPC
    /// count (read-backs + index raw puts/deletes).
    pub fn index_ops(&self) -> u64 {
        self.raw_puts + self.raw_deletes + self.gets + self.get_rows + self.scans
    }
}

impl std::ops::Sub for DispatchSnapshot {
    type Output = DispatchSnapshot;
    fn sub(self, rhs: DispatchSnapshot) -> DispatchSnapshot {
        DispatchSnapshot {
            puts: self.puts - rhs.puts,
            deletes: self.deletes - rhs.deletes,
            raw_puts: self.raw_puts - rhs.raw_puts,
            raw_deletes: self.raw_deletes - rhs.raw_deletes,
            gets: self.gets - rhs.gets,
            get_rows: self.get_rows - rhs.get_rows,
            scans: self.scans - rhs.scans,
        }
    }
}

/// Cluster construction options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of region servers.
    pub num_servers: usize,
    /// Template engine options applied to every region.
    pub lsm: LsmOptions,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self { num_servers: 1, lsm: LsmOptions::default() }
    }
}

struct Region {
    spec: RegionSpec,
    engine: Arc<LsmTree>,
    /// Serializes timestamp assignment + WAL/memtable *staging* for client
    /// writes, so visibility order equals timestamp order within a region —
    /// HBase provides the same guarantee via row locks + per-region MVCC
    /// (§4.3 "writes are sequenced in a region"). Without it, two
    /// concurrent same-row puts can apply out of timestamp order, and a
    /// coprocessor's `RB(k, tnew−δ)` could miss the older write entirely,
    /// leaking a stale index entry.
    ///
    /// The lock covers only the in-memory stage (`LsmTree::stage_batch`);
    /// the WAL-fsync wait (`LsmTree::complete`) runs *outside* it, so
    /// concurrent writers to one region share group commits instead of
    /// serializing on the disk, and writers to different regions never
    /// interact at all.
    write_lock: parking_lot::Mutex<()>,
}

struct TableState {
    map: PartitionMap,
    regions: HashMap<RegionId, Arc<Region>>,
    observers: Vec<(u64, Arc<dyn TableObserver>)>,
}

struct ServerState {
    clock: Arc<TimestampOracle>,
    alive: bool,
    /// The regions (and their fencing epochs) this server believed it owned
    /// at the moment it crashed — the stale view a "zombie" (declared dead
    /// but still reachable) would serve writes against. Populated by
    /// `crash_server`, consulted by `zombie_put` to prove the fence holds.
    stale_view: HashMap<String, Vec<(RegionId, u64)>>,
}

struct Inner {
    dir: PathBuf,
    opts: ClusterOptions,
    servers: RwLock<BTreeMap<ServerId, ServerState>>,
    tables: RwLock<HashMap<String, TableState>>,
    /// Region-level operations issued, counted per op kind at the dispatch
    /// path (every one of these would be a network call in the real
    /// deployment).
    dispatch: DispatchCounters,
    /// Observer registration tokens.
    next_observer_id: AtomicU64,
    /// Shared pool for parallel fan-out: observer dispatch across index
    /// specs, per-region stages of batched puts, and the SU2 ∥ SU3/SU4
    /// split inside sync index maintenance.
    fanout: FanoutPool,
    /// Chaos-testing fault surface; unarmed (and free) in production.
    faults: FaultPlan,
    /// §5.3 recovery bookkeeping (how often, how much moved/replayed).
    recoveries: AtomicU64,
    regions_recovered: AtomicU64,
    replayed_ops: AtomicU64,
    /// Writes rejected by the epoch fence (zombie writes, stale clients).
    fenced_writes: AtomicU64,
}

/// Counters describing the master's §5.3 recovery activity — evidence the
/// self-healing path actually ran (and how much it moved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Completed `recover()` invocations.
    pub recoveries: u64,
    /// Regions reassigned + reopened across all recoveries.
    pub regions_recovered: u64,
    /// Base operations restored from WALs and delivered to observers.
    pub replayed_ops: u64,
    /// Writes rejected with [`ClusterError::StaleEpoch`].
    pub fenced_writes: u64,
}

/// Handle to the cluster; cheap to clone, shared with coprocessors.
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<Inner>,
}

/// Non-owning cluster handle. Background services (e.g. Diff-Index's
/// asynchronous processing service) hold one of these so that the cluster —
/// which owns the observers, which own the services — is not kept alive by a
/// reference cycle.
#[derive(Clone)]
pub struct WeakCluster {
    inner: Weak<Inner>,
}

impl WeakCluster {
    /// Upgrade back to a usable handle, if the cluster is still alive.
    pub fn upgrade(&self) -> Option<Cluster> {
        self.inner.upgrade().map(|inner| Cluster { inner })
    }
}

impl std::fmt::Debug for WeakCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WeakCluster")
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("dir", &self.inner.dir)
            .field("servers", &self.inner.servers.read().len())
            .finish()
    }
}

/// Result of a `put_returning` call: the assigned timestamp plus, per
/// column, the value that was current immediately before the put. The
/// async-session client library uses this to build delete markers for stale
/// index entries (§5.2).
#[derive(Debug, Clone)]
pub struct PutOutcome {
    /// Server-assigned timestamp of the put.
    pub ts: u64,
    /// For each written column, the previous visible value (if any).
    pub old_values: Vec<(Bytes, Option<VersionedValue>)>,
}

impl Cluster {
    /// Create a cluster of `opts.num_servers` region servers persisting
    /// under `dir`.
    pub fn new(dir: impl Into<PathBuf>, opts: ClusterOptions) -> Result<Self> {
        assert!(opts.num_servers >= 1, "need at least one server");
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(diff_index_lsm::LsmError::from)?;
        let servers = (0..opts.num_servers as ServerId)
            .map(|id| {
                (
                    id,
                    ServerState {
                        clock: Arc::new(TimestampOracle::new()),
                        alive: true,
                        stale_view: HashMap::new(),
                    },
                )
            })
            .collect();
        Ok(Self {
            inner: Arc::new(Inner {
                dir,
                opts,
                servers: RwLock::new(servers),
                tables: RwLock::new(HashMap::new()),
                dispatch: DispatchCounters::default(),
                next_observer_id: AtomicU64::new(1),
                fanout: FanoutPool::new_default(),
                faults: FaultPlan::default(),
                recoveries: AtomicU64::new(0),
                regions_recovered: AtomicU64::new(0),
                replayed_ops: AtomicU64::new(0),
                fenced_writes: AtomicU64::new(0),
            }),
        })
    }

    /// The cluster's shared fan-out pool. Coprocessors use it to run
    /// independent index sub-operations in parallel.
    pub fn fanout(&self) -> &FanoutPool {
        &self.inner.fanout
    }

    /// This cluster's fault-injection surface (chaos testing). Unarmed by
    /// default; see [`FaultPlan`].
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// A non-owning handle to this cluster.
    pub fn downgrade(&self) -> WeakCluster {
        WeakCluster { inner: Arc::downgrade(&self.inner) }
    }

    // -- DDL -----------------------------------------------------------------

    /// Create a table evenly pre-split into `num_regions` regions, assigned
    /// round-robin across the currently alive servers.
    pub fn create_table(&self, name: &str, num_regions: usize) -> Result<()> {
        let servers = self.alive_servers();
        if servers.is_empty() {
            return Err(ClusterError::Unavailable("no alive servers".into()));
        }
        let map = PartitionMap::even(num_regions.max(1), &servers);
        self.install_table(name, map)
    }

    /// Create a table with explicit split points. Splits must fall on row
    /// boundaries — pass values produced by
    /// [`crate::encoding::row_start`].
    pub fn create_table_with_splits(&self, name: &str, splits: &[Bytes]) -> Result<()> {
        let servers = self.alive_servers();
        if servers.is_empty() {
            return Err(ClusterError::Unavailable("no alive servers".into()));
        }
        let map = PartitionMap::from_splits(splits, &servers);
        self.install_table(name, map)
    }

    fn install_table(&self, name: &str, map: PartitionMap) -> Result<()> {
        let mut regions = HashMap::new();
        for (spec, _server) in map.regions() {
            let engine = self.open_region_engine(name, spec.id)?.0;
            regions.insert(
                spec.id,
                Arc::new(Region {
                    spec: spec.clone(),
                    engine,
                    write_lock: parking_lot::Mutex::new(()),
                }),
            );
        }
        let mut tables = self.inner.tables.write();
        tables.insert(name.to_string(), TableState { map, regions, observers: Vec::new() });
        Ok(())
    }

    fn open_region_engine(
        &self,
        table: &str,
        region: RegionId,
    ) -> Result<(Arc<LsmTree>, Vec<Cell>)> {
        let dir = self.inner.dir.join(table).join(format!("region-{region:04}"));
        let (engine, replayed) = LsmTree::open_with_replay(dir, self.inner.opts.lsm.clone())?;
        let engine = Arc::new(engine);
        // Every engine — including ones reopened by recovery — shares the
        // cluster's fault injector, so armed WAL faults fire wherever the
        // next matching operation lands.
        engine.set_fault_injector(Arc::clone(self.inner.faults.lsm()));
        // Wire engine flush events to table observers (drain-AUQ-before-flush).
        let weak: Weak<Inner> = Arc::downgrade(&self.inner);
        let t = table.to_string();
        engine.add_pre_flush_hook(Box::new({
            let weak = weak.clone();
            let t = t.clone();
            move || {
                if let Some(inner) = weak.upgrade() {
                    let cluster = Cluster { inner };
                    for obs in cluster.observers_of(&t) {
                        obs.pre_flush(&cluster, &t);
                    }
                }
            }
        }));
        engine.add_post_flush_hook(Box::new(move || {
            if let Some(inner) = weak.upgrade() {
                let cluster = Cluster { inner };
                for obs in cluster.observers_of(&t) {
                    obs.post_flush(&cluster, &t);
                }
            }
        }));
        Ok((engine, replayed))
    }

    /// Attach a coprocessor-style observer to `table`, returning a token
    /// usable with [`Cluster::unregister_observer`].
    pub fn register_observer(&self, table: &str, obs: Arc<dyn TableObserver>) -> Result<u64> {
        let id = self.inner.next_observer_id.fetch_add(1, Ordering::Relaxed);
        let mut tables = self.inner.tables.write();
        let state =
            tables.get_mut(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        state.observers.push((id, obs));
        Ok(id)
    }

    /// Detach a previously registered observer (used by `DROP INDEX`).
    pub fn unregister_observer(&self, table: &str, token: u64) -> Result<()> {
        let mut tables = self.inner.tables.write();
        let state =
            tables.get_mut(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        state.observers.retain(|(id, _)| *id != token);
        Ok(())
    }

    fn observers_of(&self, table: &str) -> Vec<Arc<dyn TableObserver>> {
        self.inner
            .tables
            .read()
            .get(table)
            .map(|t| t.observers.iter().map(|(_, o)| Arc::clone(o)).collect())
            .unwrap_or_default()
    }

    // -- routing -------------------------------------------------------------

    fn alive_servers(&self) -> Vec<ServerId> {
        self.inner
            .servers
            .read()
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Route an encoded key to `(region, server clock)`, failing if the
    /// hosting server is down. `op` tags the dispatch counter this
    /// operation lands in.
    fn route(
        &self,
        table: &str,
        enc_key: &[u8],
        op: RegionOp,
    ) -> Result<(Arc<Region>, Arc<TimestampOracle>)> {
        let (region, server) = {
            let tables = self.inner.tables.read();
            let state =
                tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
            let spec = state.map.locate(enc_key);
            let server = state.map.server_for(enc_key);
            let region = state
                .regions
                .get(&spec.id)
                .cloned()
                .ok_or(ClusterError::ServerDown(server))?;
            (region, server)
        };
        let clock = {
            let servers = self.inner.servers.read();
            let s = servers.get(&server).ok_or(ClusterError::ServerDown(server))?;
            if !s.alive {
                return Err(ClusterError::ServerDown(server));
            }
            Arc::clone(&s.clock)
        };
        self.inner.dispatch.bump(op);
        Ok((region, clock))
    }

    /// Regions (with engines) overlapping an encoded key range, in key order.
    fn regions_in_range(
        &self,
        table: &str,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<Vec<Arc<Region>>> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        let mut out = Vec::new();
        for (spec, server) in state.map.regions_in_range(start, end) {
            let region =
                state.regions.get(&spec.id).cloned().ok_or(ClusterError::ServerDown(server))?;
            self.inner.dispatch.bump(RegionOp::Scan);
            out.push(region);
        }
        Ok(out)
    }

    // -- client writes --------------------------------------------------------

    /// Client put: write `columns` to `row` with a server-assigned
    /// timestamp, then run table observers (index maintenance). Returns the
    /// assigned timestamp.
    ///
    /// The region lock is held only while the write is *staged* (timestamp
    /// assignment + WAL buffer + memtable); the group-commit durability
    /// wait happens after release, so concurrent puts to one region share
    /// fsyncs.
    pub fn put(&self, table: &str, row: &[u8], columns: &[ColumnValue]) -> Result<u64> {
        let (region, clock) = self.route(table, &row_start(row), RegionOp::Put)?;
        let (ts, staged) = {
            let _w = region.write_lock.lock();
            let ts = clock.next();
            let cells: Vec<Cell> = columns
                .iter()
                .map(|(col, val)| Cell::put(cell_key(row, col), ts, val.clone()))
                .collect();
            (ts, region.engine.stage_batch(&cells)?)
        };
        if let Some(handle) = staged {
            region.engine.complete(handle)?;
        }
        drop(region);
        if self.inner.faults.take_crash_next_put() {
            // Injected crash in the §5.3 window: the base write is durable
            // (staged + completed above) but the server dies before its
            // coprocessors maintain the index and before the client is
            // acked. Only WAL-replay recovery can repair the divergence.
            let owner = self.server_for_row(table, row)?;
            self.crash_server(owner);
            return Err(ClusterError::ServerDown(owner));
        }
        self.notify_put(table, row, columns, ts)?;
        Ok(ts)
    }

    /// Batched client put: rows are grouped by region, each region group is
    /// staged under **one** region-lock acquisition as **one** WAL record
    /// (with consecutive timestamps, preserving §4.3's apply-order =
    /// timestamp-order invariant), and region groups proceed in parallel on
    /// the fan-out pool. Observer dispatch (index maintenance) then fans
    /// out across rows. Returns the per-row timestamps, in input order.
    pub fn put_batch(&self, table: &str, rows: &[(Bytes, Vec<ColumnValue>)]) -> Result<Vec<u64>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        // Route every row and group by region.
        type Group = (Arc<Region>, Arc<TimestampOracle>, Vec<usize>);
        let mut groups: BTreeMap<RegionId, Group> = BTreeMap::new();
        for (i, (row, _)) in rows.iter().enumerate() {
            let (region, clock) = self.route(table, &row_start(row), RegionOp::Put)?;
            groups
                .entry(region.spec.id)
                .or_insert_with(|| (region, clock, Vec::new()))
                .2
                .push(i);
        }
        // Stage each group: one lock acquisition, one WAL record, one
        // memtable apply per region — then one shared durability wait.
        let tasks: Vec<_> = groups
            .into_values()
            .map(|(region, clock, idxs)| {
                let group_rows: Vec<(Bytes, Vec<ColumnValue>)> =
                    idxs.iter().map(|&i| rows[i].clone()).collect();
                move || -> Result<(Vec<usize>, Vec<u64>)> {
                    let (tss, staged) = {
                        let _w = region.write_lock.lock();
                        let mut cells = Vec::new();
                        let mut tss = Vec::with_capacity(group_rows.len());
                        for (row, columns) in &group_rows {
                            let ts = clock.next();
                            tss.push(ts);
                            for (col, val) in columns {
                                cells.push(Cell::put(cell_key(row, col), ts, val.clone()));
                            }
                        }
                        (tss, region.engine.stage_batch(&cells)?)
                    };
                    if let Some(handle) = staged {
                        region.engine.complete(handle)?;
                    }
                    Ok((idxs, tss))
                }
            })
            .collect();
        let mut ts_out = vec![0u64; rows.len()];
        for staged in self.inner.fanout.run(tasks) {
            let (idxs, tss) = staged?;
            for (i, ts) in idxs.into_iter().zip(tss) {
                ts_out[i] = ts;
            }
        }
        // Index maintenance, fanned out across rows (each row's observers
        // fan out again across specs inside `notify_put`).
        let observers = self.observers_of(table);
        if !observers.is_empty() {
            let jobs: Vec<_> = rows
                .iter()
                .enumerate()
                .map(|(i, (row, columns))| {
                    let cluster = self.clone();
                    let table = table.to_string();
                    let row = row.clone();
                    let columns = columns.clone();
                    let observers = observers.clone();
                    let ts = ts_out[i];
                    move || -> Result<()> {
                        for obs in &observers {
                            obs.post_put(&cluster, &table, &row, &columns, ts)?;
                        }
                        Ok(())
                    }
                })
                .collect();
            for r in self.inner.fanout.run(jobs) {
                r?;
            }
        }
        Ok(ts_out)
    }

    /// Like [`Cluster::put`] but also reads, *before* writing, the values the
    /// put replaces. Used by the session-consistency client library (§5.2).
    pub fn put_returning(
        &self,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
    ) -> Result<PutOutcome> {
        let (region, clock) = self.route(table, &row_start(row), RegionOp::Put)?;
        let (ts, old_values, staged) = {
            let _w = region.write_lock.lock();
            let mut old_values = Vec::with_capacity(columns.len());
            for (col, _) in columns {
                let old = region.engine.get(&cell_key(row, col), u64::MAX)?;
                old_values.push((col.clone(), old));
            }
            let ts = clock.next();
            let cells: Vec<Cell> = columns
                .iter()
                .map(|(col, val)| Cell::put(cell_key(row, col), ts, val.clone()))
                .collect();
            let staged = region.engine.stage_batch(&cells)?;
            (ts, old_values, staged)
        };
        if let Some(handle) = staged {
            region.engine.complete(handle)?;
        }
        drop(region);
        self.notify_put(table, row, columns, ts)?;
        Ok(PutOutcome { ts, old_values })
    }

    /// Client delete of the named columns (tombstones with a server-assigned
    /// timestamp), then observer dispatch.
    pub fn delete(&self, table: &str, row: &[u8], columns: &[Bytes]) -> Result<u64> {
        let (region, clock) = self.route(table, &row_start(row), RegionOp::Delete)?;
        let (ts, staged) = {
            let _w = region.write_lock.lock();
            let ts = clock.next();
            let cells: Vec<Cell> =
                columns.iter().map(|col| Cell::delete(cell_key(row, col), ts)).collect();
            (ts, region.engine.stage_batch(&cells)?)
        };
        if let Some(handle) = staged {
            region.engine.complete(handle)?;
        }
        drop(region);
        let columns_owned = columns.to_vec();
        let row_owned = Bytes::copy_from_slice(row);
        self.notify_observers(table, move |obs, cluster, table| {
            obs.post_delete(cluster, table, &row_owned, &columns_owned, ts)
        })?;
        Ok(ts)
    }

    /// Dispatch `post_put` to every observer of `table`. One shared helper
    /// replaces the loops formerly copy-pasted into `put`, `put_returning`
    /// and `delete`.
    fn notify_put(&self, table: &str, row: &[u8], columns: &[ColumnValue], ts: u64) -> Result<()> {
        let row = Bytes::copy_from_slice(row);
        let columns = columns.to_vec();
        self.notify_observers(table, move |obs, cluster, table| {
            obs.post_put(cluster, table, &row, &columns, ts)
        })
    }

    /// Run one observer callback per observer of `table`. Multiple
    /// observers — one per index spec — run **in parallel** on the fan-out
    /// pool, since their index tables are independent; the first error (in
    /// observer-registration order) wins.
    fn notify_observers<F>(&self, table: &str, callback: F) -> Result<()>
    where
        F: Fn(&dyn TableObserver, &Cluster, &str) -> Result<()> + Send + Sync + 'static,
    {
        let observers = self.observers_of(table);
        match observers.len() {
            0 => Ok(()),
            1 => callback(observers[0].as_ref(), self, table),
            _ => {
                let callback = Arc::new(callback);
                let tasks: Vec<_> = observers
                    .into_iter()
                    .map(|obs| {
                        let callback = Arc::clone(&callback);
                        let cluster = self.clone();
                        let table = table.to_string();
                        move || callback(obs.as_ref(), &cluster, &table)
                    })
                    .collect();
                let results = self.inner.fanout.run(tasks);
                results.into_iter().find(|r| r.is_err()).unwrap_or(Ok(()))
            }
        }
    }

    /// Internal put with an explicit timestamp and NO observer dispatch.
    /// Index maintenance uses this: an index entry must carry the same
    /// timestamp as the base entry it is associated with (§4.3).
    pub fn raw_put(&self, table: &str, row: &[u8], columns: &[ColumnValue], ts: u64) -> Result<()> {
        let (region, _clock) = self.route(table, &row_start(row), RegionOp::RawPut)?;
        let cells: Vec<Cell> = columns
            .iter()
            .map(|(col, val)| Cell::put(cell_key(row, col), ts, val.clone()))
            .collect();
        region.engine.write_batch(&cells)?;
        Ok(())
    }

    /// Internal delete with an explicit timestamp and NO observer dispatch.
    pub fn raw_delete(&self, table: &str, row: &[u8], columns: &[Bytes], ts: u64) -> Result<()> {
        let (region, _clock) = self.route(table, &row_start(row), RegionOp::RawDelete)?;
        let cells: Vec<Cell> =
            columns.iter().map(|col| Cell::delete(cell_key(row, col), ts)).collect();
        region.engine.write_batch(&cells)?;
        Ok(())
    }

    // -- client reads ----------------------------------------------------------

    /// Read one column of one row at snapshot `ts` (`u64::MAX` = latest).
    pub fn get(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> Result<Option<VersionedValue>> {
        let (region, _clock) = self.route(table, &row_start(row), RegionOp::Get)?;
        Ok(region.engine.get(&cell_key(row, column), ts)?)
    }

    /// Raw versioned read: the newest cell (tombstones included) for one
    /// column of one row. Returns `(timestamp, is_tombstone)`. Used by
    /// administrative tools (e.g. Diff-Index's index cleanser) that must
    /// out-time stray tombstones.
    pub fn get_cell_versioned(
        &self,
        table: &str,
        row: &[u8],
        column: &[u8],
        ts: u64,
    ) -> Result<Option<(u64, bool)>> {
        let (region, _clock) = self.route(table, &row_start(row), RegionOp::Get)?;
        Ok(region
            .engine
            .get_versioned(&cell_key(row, column), ts)?
            .map(|c| (c.key.ts, c.key.kind == CellKind::Delete)))
    }

    /// Read all columns of one row at snapshot `ts`.
    pub fn get_row(&self, table: &str, row: &[u8], ts: u64) -> Result<Vec<(Bytes, VersionedValue)>> {
        let (region, _clock) = self.route(table, &row_start(row), RegionOp::GetRow)?;
        let cells = region.engine.scan(&row_start(row), Some(&row_end(row)), ts, usize::MAX)?;
        let mut out = Vec::with_capacity(cells.len());
        for (key, val) in cells {
            let (_row, col) = decode_cell_key(&key)
                .ok_or_else(|| diff_index_lsm::LsmError::Corruption("bad cell key".into()))?;
            out.push((Bytes::from(col), val));
        }
        Ok(out)
    }

    /// Scan whole rows in `[start_row, end_row)` at snapshot `ts`, up to
    /// `limit` rows. Fans out to every region overlapping the range, in key
    /// order.
    pub fn scan_rows(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let start = row_start(start_row);
        let end = end_row.map(row_start);
        self.scan_grouped(table, &start, end.as_deref(), ts, limit)
    }

    /// Scan whole rows whose **row key** starts with `row_prefix`.
    /// Diff-Index reads its key-only index tables this way: the index row
    /// key is `value ⊕ base-row-key`, so "all index entries for value v" is
    /// exactly a prefix scan (§4).
    pub fn scan_rows_prefix(
        &self,
        table: &str,
        row_prefix: &[u8],
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let start = escape_no_term(row_prefix);
        let end = prefix_end(&start);
        self.scan_grouped(table, &start, end.as_deref(), ts, limit)
    }

    /// Scan whole rows whose row key is in `[start_row, end_row)` under
    /// plain byte-string order — unlike [`Cluster::scan_rows`], a row key
    /// that *extends* `start_row` is included and one extending `end_row`
    /// is excluded. Diff-Index range queries use this with encoded value
    /// bounds (its index row keys are `value ⊕ rowkey` concatenations).
    pub fn scan_rows_range(
        &self,
        table: &str,
        start_row: &[u8],
        end_row: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let start = escape_no_term(start_row);
        let end = end_row.map(escape_no_term);
        self.scan_grouped(table, &start, end.as_deref(), ts, limit)
    }

    fn scan_grouped(
        &self,
        table: &str,
        start: &[u8],
        end: Option<&[u8]>,
        ts: u64,
        limit: usize,
    ) -> Result<Vec<RowGroup>> {
        let regions = self.regions_in_range(table, start, end)?;
        let mut rows: Vec<RowGroup> = Vec::new();
        'regions: for region in regions {
            let cells = region.engine.scan(start, end, ts, usize::MAX)?;
            for (key, val) in cells {
                let (row, col) = decode_cell_key(&key)
                    .ok_or_else(|| diff_index_lsm::LsmError::Corruption("bad cell key".into()))?;
                let row = Bytes::from(row);
                match rows.last_mut() {
                    Some((r, cols)) if *r == row => cols.push((Bytes::from(col), val)),
                    _ => {
                        if rows.len() >= limit {
                            break 'regions;
                        }
                        rows.push((row, vec![(Bytes::from(col), val)]));
                    }
                }
            }
        }
        rows.truncate(limit);
        Ok(rows)
    }

    // -- maintenance / failure injection ---------------------------------------

    /// Flush every region of `table`.
    pub fn flush_table(&self, table: &str) -> Result<()> {
        for engine in self.engines_of(table)? {
            engine.flush()?;
        }
        Ok(())
    }

    /// Major-compact every region of `table`.
    pub fn compact_table(&self, table: &str) -> Result<()> {
        for engine in self.engines_of(table)? {
            engine.compact()?;
        }
        Ok(())
    }

    /// Flush every region of every table.
    pub fn flush_all(&self) -> Result<()> {
        let names: Vec<String> = self.inner.tables.read().keys().cloned().collect();
        for n in names {
            self.flush_table(&n)?;
        }
        Ok(())
    }

    fn engines_of(&self, table: &str) -> Result<Vec<Arc<LsmTree>>> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        Ok(state.regions.values().map(|r| Arc::clone(&r.engine)).collect())
    }

    /// Kill a region server: its regions' memtables are lost (WAL and
    /// SSTables survive on durable storage) and requests routed to it fail
    /// with [`ClusterError::ServerDown`] until [`Cluster::recover`] runs.
    pub fn crash_server(&self, server: ServerId) {
        // Drop the engines hosted by the dead server, discarding memtables —
        // and capture the dying server's view of its ownership (region ids +
        // fencing epochs): the stale map a zombie would keep serving from.
        let mut stale_view: HashMap<String, Vec<(RegionId, u64)>> = HashMap::new();
        {
            let mut tables = self.inner.tables.write();
            for (name, state) in tables.iter_mut() {
                let victims: Vec<(RegionId, u64)> = state
                    .map
                    .entries()
                    .filter(|(_, s, _)| *s == server)
                    .map(|(r, _, epoch)| (r.id, epoch))
                    .collect();
                for (id, _) in &victims {
                    state.regions.remove(id);
                }
                if !victims.is_empty() {
                    stale_view.insert(name.clone(), victims);
                }
            }
        }
        let mut servers = self.inner.servers.write();
        if let Some(s) = servers.get_mut(&server) {
            s.alive = false;
            s.stale_view = stale_view;
        }
    }

    /// Bring a crashed server back into the pool (empty-handed: its former
    /// regions stay where recovery put them; the rebooted server receives
    /// regions again at the next `create_table` or reassignment).
    pub fn restart_server(&self, server: ServerId) {
        let mut servers = self.inner.servers.write();
        if let Some(s) = servers.get_mut(&server) {
            s.alive = true;
            s.clock = Arc::new(TimestampOracle::new());
        }
    }

    /// Master failover (ZooKeeper's role in Figure 3): reassign every region
    /// of every dead server to the survivors, reopen each from durable
    /// storage (replaying its WAL), and deliver every replayed base
    /// operation to the table's observers (`post_replay`) so Diff-Index can
    /// re-enqueue index work (§5.3).
    pub fn recover(&self) -> Result<()> {
        let dead: Vec<ServerId> = {
            let servers = self.inner.servers.read();
            servers.iter().filter(|(_, s)| !s.alive).map(|(&id, _)| id).collect()
        };
        let alive = self.alive_servers();
        if alive.is_empty() {
            return Err(ClusterError::Unavailable("no surviving servers".into()));
        }
        // Open the §5.3 recovery window: observers hold their AUQ workers so
        // queued tasks for dead regions stop burning retries; they resume —
        // now draining against the new owners — when the window closes.
        let hooked: Vec<(String, Vec<Arc<dyn TableObserver>>)> = {
            let tables = self.inner.tables.read();
            tables
                .iter()
                .map(|(name, state)| {
                    (name.clone(), state.observers.iter().map(|(_, o)| Arc::clone(o)).collect())
                })
                .collect()
        };
        for (table, observers) in &hooked {
            for obs in observers {
                obs.pre_recovery(self, table);
            }
        }
        let result = self.recover_inner(&dead, &alive);
        for (table, observers) in &hooked {
            for obs in observers {
                obs.post_recovery(self, table);
            }
        }
        result
    }

    fn recover_inner(&self, dead: &[ServerId], alive: &[ServerId]) -> Result<()> {
        // Collect the replay work while holding the write lock, dispatch
        // observers after releasing it (observers issue cluster ops).
        let mut replays: Vec<(String, Vec<ReplayedOp>)> = Vec::new();
        {
            let mut tables = self.inner.tables.write();
            for (name, state) in tables.iter_mut() {
                let mut moved: Vec<RegionId> = Vec::new();
                for &d in dead {
                    moved.extend(state.map.reassign(d, alive));
                }
                self.inner.regions_recovered.fetch_add(moved.len() as u64, Ordering::Relaxed);
                for id in moved {
                    let spec = state
                        .map
                        .regions()
                        .find(|(r, _)| r.id == id)
                        .map(|(r, _)| r.clone())
                        .expect("moved region exists");
                    let (engine, replayed) = self.open_region_engine(name, id)?;
                    // The dead server's clock may have run ahead of the
                    // adopting server's; advance the new owner past every
                    // recovered timestamp so post-recovery writes cannot be
                    // shadowed by pre-crash data (LSM newest-ts-wins).
                    let max_ts = engine.max_timestamp();
                    if let Some(owner) = state.map.server_of_region(id) {
                        let servers = self.inner.servers.read();
                        if let Some(srv) = servers.get(&owner) {
                            srv.clock.advance_past(max_ts);
                        }
                    }
                    state.regions.insert(
                        id,
                        Arc::new(Region { spec, engine, write_lock: parking_lot::Mutex::new(()) }),
                    );
                    let mut ops = Vec::with_capacity(replayed.len());
                    for cell in replayed {
                        let Some((row, column)) = decode_cell_key(&cell.key.user_key) else {
                            continue;
                        };
                        ops.push(match cell.key.kind {
                            CellKind::Put => ReplayedOp::Put {
                                row,
                                column,
                                value: cell.value,
                                ts: cell.key.ts,
                            },
                            CellKind::Delete => {
                                ReplayedOp::Delete { row, column, ts: cell.key.ts }
                            }
                        });
                    }
                    if !ops.is_empty() {
                        replays.push((name.clone(), ops));
                    }
                }
            }
        }
        for (table, ops) in replays {
            let observers = self.observers_of(&table);
            self.inner.replayed_ops.fetch_add(ops.len() as u64, Ordering::Relaxed);
            for op in &ops {
                for obs in &observers {
                    obs.post_replay(self, &table, op)?;
                }
            }
        }
        self.inner.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // -- introspection -----------------------------------------------------------

    /// Ids of currently alive servers.
    pub fn servers(&self) -> Vec<ServerId> {
        self.alive_servers()
    }

    /// Sum of engine metrics across all regions of `table` — the per-table
    /// `(Base Put, Base Read, …)` evidence for the paper's Table 2.
    pub fn table_metrics(&self, table: &str) -> Result<MetricsSnapshot> {
        let engines = self.engines_of(table)?;
        Ok(engines
            .iter()
            .map(|e| e.metrics().snapshot())
            .fold(MetricsSnapshot::default(), |a, b| a + b))
    }

    /// Total region-level operations issued (network-call proxy). Derived
    /// from the per-op dispatch counters — see [`Cluster::dispatch_metrics`]
    /// for the breakdown.
    pub fn rpc_count(&self) -> u64 {
        self.inner.dispatch.snapshot().total()
    }

    /// Per-operation region dispatch counts, measured at the routing choke
    /// point every operation passes through.
    pub fn dispatch_metrics(&self) -> DispatchSnapshot {
        self.inner.dispatch.snapshot()
    }

    /// A client-cacheable snapshot of `table`'s partition map: for each
    /// region in key order, its encoded start key, region id, the server
    /// currently hosting it, and the assignment's fencing epoch. This is
    /// what a remote client caches and routes by; it goes stale when the
    /// master reassigns regions, which the client discovers via
    /// [`ClusterError::NotServing`] or [`ClusterError::StaleEpoch`].
    pub fn partition_snapshot(
        &self,
        table: &str,
    ) -> Result<Vec<(Bytes, RegionId, ServerId, u64)>> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        Ok(state
            .map
            .entries()
            .map(|(spec, server, epoch)| (spec.start.clone(), spec.id, server, epoch))
            .collect())
    }

    /// The server currently hosting `row` of `table` (same row-key encoding
    /// as the data path). Region servers use this to police ownership:
    /// requests arriving at the wrong server answer
    /// [`ClusterError::NotServing`] with the real owner.
    pub fn server_for_row(&self, table: &str, row: &[u8]) -> Result<ServerId> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        Ok(state.map.server_for(&row_start(row)))
    }

    /// The current fencing epoch of the region hosting `row` of `table`.
    pub fn epoch_for_row(&self, table: &str, row: &[u8]) -> Result<u64> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        Ok(state.map.epoch_for(&row_start(row)))
    }

    /// Fencing check for a write stamped with the epoch the sender believes
    /// the target region has. A stale stamp proves the sender's partition
    /// map predates a failover: the write is rejected with
    /// [`ClusterError::StaleEpoch`] carrying the current owner and epoch so
    /// the sender can refresh and re-route. Region servers call this for
    /// every row-addressed write arriving over the wire.
    pub fn check_write_epoch(&self, table: &str, row: &[u8], stamped: u64) -> Result<()> {
        let (owner, epoch) = {
            let tables = self.inner.tables.read();
            let state =
                tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
            let enc = row_start(row);
            (state.map.server_for(&enc), state.map.epoch_for(&enc))
        };
        if stamped != epoch && !fencing_disabled() {
            self.inner.fenced_writes.fetch_add(1, Ordering::Relaxed);
            return Err(ClusterError::StaleEpoch { owner, epoch });
        }
        Ok(())
    }

    /// A write arriving at a **zombie** — server `server` was declared dead
    /// and its regions reassigned, but it is still reachable and still holds
    /// its crash-time view of the partition map. The zombie checks the
    /// fencing epoch recorded in its stale view against the region's current
    /// epoch and must reject the write with [`ClusterError::StaleEpoch`]:
    /// accepting it would ack a write into discarded state (split-brain,
    /// a lost acked write). With fencing sabotaged
    /// ([`set_disable_fencing`]), the zombie acks the write *without
    /// applying it anywhere authoritative* — exactly the failure mode the
    /// chaos checkers must catch.
    pub fn zombie_put(
        &self,
        server: ServerId,
        table: &str,
        row: &[u8],
        _columns: &[ColumnValue],
    ) -> Result<u64> {
        let enc = row_start(row);
        let (region_id, owner, current_epoch) = {
            let tables = self.inner.tables.read();
            let state =
                tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
            let spec = state.map.locate(&enc);
            (
                spec.id,
                state.map.server_for(&enc),
                state.map.epoch_for(&enc),
            )
        };
        let servers = self.inner.servers.read();
        let zombie =
            servers.get(&server).ok_or(ClusterError::ServerDown(server))?;
        let stale_epoch = zombie
            .stale_view
            .get(table)
            .and_then(|v| v.iter().find(|(id, _)| *id == region_id))
            .map(|(_, e)| *e);
        let Some(stale_epoch) = stale_epoch else {
            // The zombie never owned this row's region: even its own stale
            // map says "not mine".
            return Err(ClusterError::NotServing { owner });
        };
        if stale_epoch == current_epoch {
            // The region has not been reassigned yet (the master has not
            // declared this server dead): there is no new owner to protect,
            // and the crashed engine cannot serve — plain unavailability.
            return Err(ClusterError::ServerDown(server));
        }
        if !fencing_disabled() {
            self.inner.fenced_writes.fetch_add(1, Ordering::Relaxed);
            return Err(ClusterError::StaleEpoch { owner, epoch: current_epoch });
        }
        // SABOTAGED: the zombie acks with a timestamp from its own clock.
        // The write lands only in the zombie's doomed state (never visible
        // to the cluster), so this ack is a lie — a lost acked write.
        Ok(zombie.clock.next())
    }

    /// Liveness of one server (the in-process health probe).
    pub fn is_alive(&self, server: ServerId) -> bool {
        self.inner.servers.read().get(&server).map(|s| s.alive).unwrap_or(false)
    }

    /// Ids of every server the cluster was built with, alive or dead — the
    /// set a health monitor probes.
    pub fn all_server_ids(&self) -> Vec<ServerId> {
        self.inner.servers.read().keys().copied().collect()
    }

    /// §5.3 recovery + fencing counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            recoveries: self.inner.recoveries.load(Ordering::Relaxed),
            regions_recovered: self.inner.regions_recovered.load(Ordering::Relaxed),
            replayed_ops: self.inner.replayed_ops.load(Ordering::Relaxed),
            fenced_writes: self.inner.fenced_writes.load(Ordering::Relaxed),
        }
    }

    /// Number of regions of `table`.
    pub fn region_count(&self, table: &str) -> Result<usize> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        Ok(state.map.len())
    }

    /// True if `table` exists.
    pub fn has_table(&self, table: &str) -> bool {
        self.inner.tables.read().contains_key(table)
    }

    /// The key-range specs of the currently open regions of `table`, in
    /// region-id order (diagnostics / tests).
    pub fn region_specs(&self, table: &str) -> Result<Vec<RegionSpec>> {
        let tables = self.inner.tables.read();
        let state = tables.get(table).ok_or_else(|| ClusterError::NoSuchTable(table.into()))?;
        let mut specs: Vec<RegionSpec> = state.regions.values().map(|r| r.spec.clone()).collect();
        specs.sort_by_key(|s| s.id);
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diff_index_lsm::TableOptions;
    use parking_lot::Mutex;
    use tempdir_lite::TempDir;

    fn test_opts(num_servers: usize) -> ClusterOptions {
        ClusterOptions {
            num_servers,
            lsm: LsmOptions {
                memtable_flush_bytes: 8 * 1024,
                table: TableOptions { block_size: 512, bloom_bits_per_key: 10 },
                auto_flush: true,
                auto_compact: true,
                compaction_trigger: 4,
                version_retention: u64::MAX, // keep all versions in tests
                ..LsmOptions::default()
            },
        }
    }

    fn cols(pairs: &[(&str, &str)]) -> Vec<ColumnValue> {
        pairs
            .iter()
            .map(|(c, v)| (Bytes::copy_from_slice(c.as_bytes()), Bytes::copy_from_slice(v.as_bytes())))
            .collect()
    }

    #[test]
    fn put_get_roundtrip_multi_region() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(3)).unwrap();
        c.create_table("t", 6).unwrap();
        assert_eq!(c.region_count("t").unwrap(), 6);
        for i in 0..50 {
            let row = format!("row{i:03}");
            c.put("t", row.as_bytes(), &cols(&[("name", &format!("val{i}"))])).unwrap();
        }
        for i in 0..50 {
            let row = format!("row{i:03}");
            let got = c.get("t", row.as_bytes(), b"name", u64::MAX).unwrap().unwrap();
            assert_eq!(got.value, Bytes::from(format!("val{i}")));
        }
        assert!(c.get("t", b"missing", b"name", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn timestamps_are_assigned_and_monotonic_per_row() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 1).unwrap();
        let t1 = c.put("t", b"r", &cols(&[("c", "v1")])).unwrap();
        let t2 = c.put("t", b"r", &cols(&[("c", "v2")])).unwrap();
        assert!(t2 > t1);
        // Snapshot read before the second put sees v1 (the paper's RB(k, t-delta)).
        let old = c.get("t", b"r", b"c", t2 - 1).unwrap().unwrap();
        assert_eq!(old.value, Bytes::from("v1"));
        assert_eq!(old.ts, t1);
    }

    #[test]
    fn get_row_returns_all_columns() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 1).unwrap();
        c.put("t", b"r", &cols(&[("a", "1"), ("b", "2"), ("c", "3")])).unwrap();
        let row = c.get_row("t", b"r", u64::MAX).unwrap();
        assert_eq!(row.len(), 3);
        let names: Vec<&[u8]> = row.iter().map(|(c, _)| c.as_ref()).collect();
        assert_eq!(names, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
    }

    #[test]
    fn delete_hides_column() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 1).unwrap();
        c.put("t", b"r", &cols(&[("a", "1"), ("b", "2")])).unwrap();
        c.delete("t", b"r", &[Bytes::from("a")]).unwrap();
        assert!(c.get("t", b"r", b"a", u64::MAX).unwrap().is_none());
        assert!(c.get("t", b"r", b"b", u64::MAX).unwrap().is_some());
        assert_eq!(c.get_row("t", b"r", u64::MAX).unwrap().len(), 1);
    }

    #[test]
    fn scan_rows_across_regions_in_order() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(4)).unwrap();
        c.create_table("t", 8).unwrap();
        // Rows with first bytes spread over the whole byte space.
        let mut expected = Vec::new();
        for i in 0..64u32 {
            let row = format!("{}key{i:03}", char::from((i * 4) as u8 % 250 + 1));
            c.put("t", row.as_bytes(), &cols(&[("c", "v")])).unwrap();
            expected.push(row);
        }
        expected.sort();
        let rows = c.scan_rows("t", b"", None, u64::MAX, usize::MAX).unwrap();
        let got: Vec<String> =
            rows.iter().map(|(r, _)| String::from_utf8(r.to_vec()).unwrap()).collect();
        assert_eq!(got, expected);

        let limited = c.scan_rows("t", b"", None, u64::MAX, 10).unwrap();
        assert_eq!(limited.len(), 10);
    }

    #[test]
    fn scan_rows_prefix_selects_prefix_only() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 4).unwrap();
        for r in ["apple1", "apple2", "apricot", "banana"] {
            c.put("t", r.as_bytes(), &cols(&[("c", "v")])).unwrap();
        }
        let rows = c.scan_rows_prefix("t", b"apple", u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 2);
        let rows = c.scan_rows_prefix("t", b"ap", u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn raw_put_uses_explicit_timestamp_without_observers() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 1).unwrap();
        c.raw_put("t", b"r", &cols(&[("c", "v")]), 777).unwrap();
        let got = c.get("t", b"r", b"c", u64::MAX).unwrap().unwrap();
        assert_eq!(got.ts, 777);
    }

    #[test]
    fn put_returning_reports_old_values() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 1).unwrap();
        let o1 = c.put_returning("t", b"r", &cols(&[("c", "v1")])).unwrap();
        assert!(o1.old_values[0].1.is_none());
        let o2 = c.put_returning("t", b"r", &cols(&[("c", "v2")])).unwrap();
        assert_eq!(o2.old_values[0].1.as_ref().unwrap().value, Bytes::from("v1"));
        assert!(o2.ts > o1.ts);
    }

    struct RecordingObserver {
        puts: Mutex<Vec<(Vec<u8>, u64)>>,
        deletes: Mutex<Vec<Vec<u8>>>,
        replays: Mutex<Vec<ReplayedOp>>,
        flushes: Mutex<Vec<&'static str>>,
    }

    impl RecordingObserver {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                puts: Mutex::new(Vec::new()),
                deletes: Mutex::new(Vec::new()),
                replays: Mutex::new(Vec::new()),
                flushes: Mutex::new(Vec::new()),
            })
        }
    }

    impl TableObserver for RecordingObserver {
        fn post_put(
            &self,
            _cluster: &Cluster,
            _table: &str,
            row: &[u8],
            _columns: &[ColumnValue],
            ts: u64,
        ) -> Result<()> {
            self.puts.lock().push((row.to_vec(), ts));
            Ok(())
        }

        fn post_delete(
            &self,
            _cluster: &Cluster,
            _table: &str,
            row: &[u8],
            _columns: &[Bytes],
            _ts: u64,
        ) -> Result<()> {
            self.deletes.lock().push(row.to_vec());
            Ok(())
        }

        fn pre_flush(&self, _cluster: &Cluster, _table: &str) {
            self.flushes.lock().push("pre");
        }

        fn post_flush(&self, _cluster: &Cluster, _table: &str) {
            self.flushes.lock().push("post");
        }

        fn post_replay(&self, _cluster: &Cluster, _table: &str, op: &ReplayedOp) -> Result<()> {
            self.replays.lock().push(op.clone());
            Ok(())
        }
    }

    #[test]
    fn observers_see_puts_deletes_and_flushes() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 1).unwrap();
        let obs = RecordingObserver::new();
        c.register_observer("t", obs.clone()).unwrap();
        let ts = c.put("t", b"r1", &cols(&[("c", "v")])).unwrap();
        c.delete("t", b"r1", &[Bytes::from("c")]).unwrap();
        c.raw_put("t", b"r2", &cols(&[("c", "v")]), 5).unwrap(); // no dispatch
        c.flush_table("t").unwrap();
        assert_eq!(*obs.puts.lock(), vec![(b"r1".to_vec(), ts)]);
        assert_eq!(*obs.deletes.lock(), vec![b"r1".to_vec()]);
        assert_eq!(*obs.flushes.lock(), vec!["pre", "post"]);
    }

    #[test]
    fn crash_makes_server_unavailable_then_recover_restores() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 2).unwrap();
        // Find rows landing on each server's region.
        let mut row_on_s0 = None;
        let mut row_on_s1 = None;
        for i in 0..255u8 {
            let row = [i, b'x'];
            let tables = c.inner.tables.read();
            let server = tables.get("t").unwrap().map.server_for(&row_start(&row));
            drop(tables);
            if server == 0 && row_on_s0.is_none() {
                row_on_s0 = Some(row);
            }
            if server == 1 && row_on_s1.is_none() {
                row_on_s1 = Some(row);
            }
        }
        let (r0, r1) = (row_on_s0.unwrap(), row_on_s1.unwrap());
        c.put("t", &r0, &cols(&[("c", "on-s0")])).unwrap();
        c.put("t", &r1, &cols(&[("c", "on-s1")])).unwrap();

        c.crash_server(1);
        // Data on server 0 still readable; server 1 rows unavailable.
        assert!(c.get("t", &r0, b"c", u64::MAX).unwrap().is_some());
        assert!(matches!(c.get("t", &r1, b"c", u64::MAX), Err(ClusterError::ServerDown(1))));
        assert!(matches!(c.put("t", &r1, &cols(&[("c", "x")])), Err(ClusterError::ServerDown(1))));

        // Master recovery: region reassigned to server 0, WAL replayed.
        c.recover().unwrap();
        let got = c.get("t", &r1, b"c", u64::MAX).unwrap().unwrap();
        assert_eq!(got.value, Bytes::from("on-s1"), "unflushed data recovered from WAL");
        c.put("t", &r1, &cols(&[("c", "post-recovery")])).unwrap();
    }

    #[test]
    fn recovery_delivers_replayed_ops_to_observers() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 2).unwrap();
        let obs = RecordingObserver::new();
        c.register_observer("t", obs.clone()).unwrap();

        // Write rows to both servers (some flushed, some not).
        let mut unflushed = Vec::new();
        for i in 0..20u8 {
            let row = [i.wrapping_mul(13), b'r', i];
            c.put("t", &row, &cols(&[("c", "v")])).unwrap();
            unflushed.push(row);
        }
        c.crash_server(0);
        c.recover().unwrap();
        let replays = obs.replays.lock();
        // Only ops whose region lived on server 0 are replayed; there must
        // be at least one, and every replay must be a Put with a sane ts.
        assert!(!replays.is_empty(), "server 0 held some regions with data");
        for op in replays.iter() {
            assert!(matches!(op, ReplayedOp::Put { .. }));
            assert!(op.ts() > 0);
        }
    }

    #[test]
    fn crash_loses_nothing_after_flush() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 4).unwrap();
        for i in 0..30 {
            c.put("t", format!("row{i}").as_bytes(), &cols(&[("c", &format!("v{i}"))])).unwrap();
        }
        c.flush_table("t").unwrap();
        for i in 30..60 {
            c.put("t", format!("row{i}").as_bytes(), &cols(&[("c", &format!("v{i}"))])).unwrap();
        }
        c.crash_server(0);
        c.crash_server(1);
        // All servers dead: recovery must fail.
        assert!(c.recover().is_err());
        // Un-crash by creating a fresh cluster over the same dir.
        let c2 = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c2.create_table("t", 4).unwrap();
        for i in 0..60 {
            let got = c2.get("t", format!("row{i}").as_bytes(), b"c", u64::MAX).unwrap().unwrap();
            assert_eq!(got.value, Bytes::from(format!("v{i}")));
        }
    }

    #[test]
    fn table_metrics_aggregate_regions() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 4).unwrap();
        for i in 0..20 {
            c.put("t", format!("r{i}").as_bytes(), &cols(&[("c", "v")])).unwrap();
        }
        c.get("t", b"r0", b"c", u64::MAX).unwrap();
        let m = c.table_metrics("t").unwrap();
        assert_eq!(m.puts, 20);
        assert_eq!(m.gets, 1);
        assert!(c.rpc_count() >= 21);
    }

    #[test]
    fn dispatch_metrics_break_down_by_op() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        c.create_table("t", 2).unwrap();
        let before = c.dispatch_metrics();
        c.put("t", b"r", &cols(&[("c", "v")])).unwrap();
        c.raw_put("t", b"r2", &cols(&[("c", "v")]), 9).unwrap();
        c.get("t", b"r", b"c", u64::MAX).unwrap();
        c.get_row("t", b"r", u64::MAX).unwrap();
        c.delete("t", b"r", &[Bytes::from("c")]).unwrap();
        c.raw_delete("t", b"r2", &[Bytes::from("c")], 10).unwrap();
        c.scan_rows("t", b"", None, u64::MAX, 10).unwrap();
        let d = c.dispatch_metrics() - before;
        assert_eq!(
            (d.puts, d.raw_puts, d.gets, d.get_rows, d.deletes, d.raw_deletes, d.scans),
            (1, 1, 1, 1, 1, 1, 2),
            "one bump per dispatch; the scan fans out to both regions"
        );
        assert_eq!(d.total(), 8);
        assert_eq!(d.index_ops(), d.total() - d.puts - d.deletes);
        assert_eq!(c.rpc_count(), c.dispatch_metrics().total());
    }

    #[test]
    fn partition_snapshot_routes_like_the_data_path() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 4).unwrap();
        let snap = c.partition_snapshot("t").unwrap();
        assert_eq!(snap.len(), 4);
        assert!(snap[0].0.is_empty(), "first region starts at the empty key");
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0, "snapshot must be in key order");
        }
        // Client-side routing over the snapshot agrees with the server, and
        // the snapshot's epochs agree with the fencing authority.
        for row in [&b"a"[..], b"m", b"z", b"\xff\xff", b""] {
            let enc = row_start(row);
            let idx = snap.partition_point(|(start, _, _, _)| start.as_ref() <= enc.as_slice());
            let (_, _, client_owner, client_epoch) = snap[idx.saturating_sub(1)];
            assert_eq!(client_owner, c.server_for_row("t", row).unwrap());
            assert_eq!(client_epoch, c.epoch_for_row("t", row).unwrap());
        }
    }

    #[test]
    fn reassignment_bumps_epochs_and_fences_stale_writes() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 4).unwrap();
        // Find a row hosted by server 1.
        let row = (0..=255u8)
            .map(|b| [b, b'x'])
            .find(|r| c.server_for_row("t", r).unwrap() == 1)
            .expect("some row lands on server 1");
        let old_epoch = c.epoch_for_row("t", &row).unwrap();
        c.check_write_epoch("t", &row, old_epoch).unwrap();
        c.crash_server(1);
        c.recover().unwrap();
        let new_epoch = c.epoch_for_row("t", &row).unwrap();
        assert_eq!(new_epoch, old_epoch + 1, "failover bumps the region epoch");
        // A write stamped under the old assignment is fenced.
        match c.check_write_epoch("t", &row, old_epoch) {
            Err(ClusterError::StaleEpoch { owner, epoch }) => {
                assert_eq!(owner, 0);
                assert_eq!(epoch, new_epoch);
            }
            other => panic!("expected StaleEpoch, got {other:?}"),
        }
        c.check_write_epoch("t", &row, new_epoch).unwrap();
        let stats = c.recovery_stats();
        assert_eq!(stats.recoveries, 1);
        assert!(stats.regions_recovered >= 1);
        assert!(stats.fenced_writes >= 1);
    }

    #[test]
    fn zombie_write_is_fenced_after_failover() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(2)).unwrap();
        c.create_table("t", 4).unwrap();
        let row = (0..=255u8)
            .map(|b| [b, b'z'])
            .find(|r| c.server_for_row("t", r).unwrap() == 1)
            .expect("some row lands on server 1");
        c.put("t", &row, &cols(&[("c", "before")])).unwrap();
        c.crash_server(1);
        // Before the master reassigns, the zombie's view matches the map:
        // the failure is plain unavailability, not a fencing violation.
        assert!(matches!(
            c.zombie_put(1, "t", &row, &cols(&[("c", "split")])),
            Err(ClusterError::ServerDown(1))
        ));
        c.recover().unwrap();
        // Resurrect the zombie (it rejoins empty-handed) and replay the
        // write it would have served from its stale view: fenced.
        c.restart_server(1);
        match c.zombie_put(1, "t", &row, &cols(&[("c", "split")])) {
            Err(ClusterError::StaleEpoch { owner, .. }) => assert_eq!(owner, 0),
            other => panic!("expected StaleEpoch, got {other:?}"),
        }
        // A row the zombie never owned answers NotServing from its own view.
        let other_row = (0..=255u8)
            .map(|b| [b, b'z'])
            .find(|r| {
                c.server_for_row("t", r).unwrap() == 0
                    && c.epoch_for_row("t", r).unwrap() == 1
            })
            .expect("some region never moved");
        assert!(matches!(
            c.zombie_put(1, "t", &other_row, &cols(&[("c", "x")])),
            Err(ClusterError::NotServing { owner: 0 })
        ));
        // The authoritative value is untouched.
        let got = c.get("t", &row, b"c", u64::MAX).unwrap().unwrap();
        assert_eq!(got.value, Bytes::from("before"));
    }

    #[test]
    fn missing_table_errors() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(1)).unwrap();
        assert!(matches!(
            c.put("nope", b"r", &cols(&[("c", "v")])),
            Err(ClusterError::NoSuchTable(_))
        ));
        assert!(matches!(c.get("nope", b"r", b"c", 0), Err(ClusterError::NoSuchTable(_))));
        assert!(!c.has_table("nope"));
    }

    #[test]
    fn concurrent_clients_multi_server() {
        let dir = TempDir::new("cluster").unwrap();
        let c = Cluster::new(dir.path(), test_opts(4)).unwrap();
        c.create_table("t", 8).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let row = format!("{}row{w}-{i}", char::from((i * 7 % 200 + 30) as u8));
                        c.put("t", row.as_bytes(), &cols(&[("c", "v")])).unwrap();
                        let _ = c.get("t", row.as_bytes(), b"c", u64::MAX).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rows = c.scan_rows("t", b"", None, u64::MAX, usize::MAX).unwrap();
        assert_eq!(rows.len(), 400);
    }
}

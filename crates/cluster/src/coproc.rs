//! Coprocessor-style observers.
//!
//! HBase coprocessors let code run server-side around table operations
//! without touching core code — Diff-Index is implemented as three such
//! observers (§7, Figure 6). Our in-process cluster mirrors the hook surface
//! Diff-Index needs: post-put, post-delete, pre/post-flush (for the
//! drain-AUQ-before-flush protocol) and post-replay (to re-enqueue restored
//! base puts during recovery, §5.3).

use crate::cluster::Cluster;
use crate::error::Result;
use bytes::Bytes;

/// A column write: `(column name, value)`.
pub type ColumnValue = (Bytes, Bytes);

/// Server-side observer attached to a table.
///
/// All hooks receive a [`Cluster`] handle so they can issue further
/// operations (e.g. write index tables hosted on other servers), exactly as
/// an HBase coprocessor uses an `HTable` client internally.
pub trait TableObserver: Send + Sync {
    /// Called after a client put has been applied (WAL + memtable) to the
    /// base table, with the server-assigned timestamp.
    fn post_put(
        &self,
        cluster: &Cluster,
        table: &str,
        row: &[u8],
        columns: &[ColumnValue],
        ts: u64,
    ) -> Result<()>;

    /// Called after a client delete has been applied to the base table.
    fn post_delete(
        &self,
        cluster: &Cluster,
        table: &str,
        row: &[u8],
        columns: &[Bytes],
        ts: u64,
    ) -> Result<()>;

    /// Called immediately before a region of `table` flushes its memtable.
    /// Diff-Index pauses and drains the AUQ here (Figure 5, "1. pause &
    /// drain") so that `PR(Flushed) = ∅` always holds.
    fn pre_flush(&self, cluster: &Cluster, table: &str) {
        let _ = (cluster, table);
    }

    /// Called after the flush (and WAL roll-forward) completes; Diff-Index
    /// resumes AUQ intake here.
    fn post_flush(&self, cluster: &Cluster, table: &str) {
        let _ = (cluster, table);
    }

    /// Called for every base operation restored by WAL replay during region
    /// recovery. Diff-Index re-enqueues each into the AUQ regardless of
    /// whether it was delivered before the failure — correct because index
    /// entries carry their base entry's timestamp, making re-delivery
    /// idempotent (§5.3).
    fn post_replay(&self, cluster: &Cluster, table: &str, op: &ReplayedOp) -> Result<()> {
        let _ = (cluster, table, op);
        Ok(())
    }

    /// Called when the master opens a §5.3 recovery window (regions of dead
    /// servers are about to be reassigned and replayed). Diff-Index holds
    /// its AUQ workers here: queued tasks addressed to a dead region would
    /// otherwise burn their retry budget against `ServerDown` before the new
    /// owner is ready, and §5.3 requires the AUQ blocked inside the window.
    fn pre_recovery(&self, cluster: &Cluster, table: &str) {
        let _ = (cluster, table);
    }

    /// Called after reassignment + WAL replay (and `post_replay` delivery)
    /// complete: the queued tasks now drain against the region's new owner —
    /// the AUQ handover that keeps acked async writes from being lost.
    fn post_recovery(&self, cluster: &Cluster, table: &str) {
        let _ = (cluster, table);
    }
}

/// One base-table operation reconstructed from the WAL during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayedOp {
    /// A restored put.
    Put {
        /// Base row key.
        row: Vec<u8>,
        /// Column name.
        column: Vec<u8>,
        /// Value written.
        value: Bytes,
        /// Original server-assigned timestamp.
        ts: u64,
    },
    /// A restored delete (tombstone).
    Delete {
        /// Base row key.
        row: Vec<u8>,
        /// Column name.
        column: Vec<u8>,
        /// Original server-assigned timestamp.
        ts: u64,
    },
}

impl ReplayedOp {
    /// The timestamp of the restored operation.
    pub fn ts(&self) -> u64 {
        match self {
            ReplayedOp::Put { ts, .. } | ReplayedOp::Delete { ts, .. } => *ts,
        }
    }
}

//! Cluster-level deterministic fault injection.
//!
//! A [`FaultPlan`] is attached to every [`Cluster`](crate::Cluster) at
//! construction (unarmed, zero-cost in production). It bundles:
//!
//! * one shared [`FaultInjector`] plumbed into **every region engine** the
//!   cluster opens (including engines reopened by recovery), so a chaos
//!   harness can make the next WAL fsync or append fail wherever it lands;
//! * a **crash-mid-put** trigger: the next client `put` crashes its hosting
//!   server *after* the base write is durably applied but *before* the
//!   coprocessors run or the client is acked — the exact §5.3 window where
//!   the base table and the index diverge until WAL-replay recovery
//!   re-enqueues the maintenance work.

use diff_index_lsm::FaultInjector;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-cluster fault-injection surface. All state is atomic; arming from a
/// harness thread and consuming from request threads needs no locks.
#[derive(Debug)]
pub struct FaultPlan {
    /// Engine-level injector shared by every region engine of the cluster.
    lsm: Arc<FaultInjector>,
    /// When set, the next client `put` crashes its server between the
    /// durable base write and observer dispatch.
    crash_next_put: AtomicBool,
    /// How many crash-mid-put faults actually fired.
    fired_put_crashes: AtomicU64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            lsm: Arc::new(FaultInjector::new()),
            crash_next_put: AtomicBool::new(false),
            fired_put_crashes: AtomicU64::new(0),
        }
    }
}

impl FaultPlan {
    /// The engine-level injector shared by all of this cluster's regions.
    /// Arm fsync/append failures through it.
    pub fn lsm(&self) -> &Arc<FaultInjector> {
        &self.lsm
    }

    /// Arm the crash-mid-put trigger: the next client `put` (not
    /// `put_batch`/`raw_put`) crashes its hosting server after the base
    /// write commits, before index maintenance and before the ack.
    pub fn arm_crash_on_next_put(&self) {
        self.crash_next_put.store(true, Ordering::Release);
    }

    /// Consume the crash-mid-put trigger (data path only).
    pub(crate) fn take_crash_next_put(&self) -> bool {
        let fire = self.crash_next_put.swap(false, Ordering::AcqRel);
        if fire {
            self.fired_put_crashes.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How many crash-mid-put faults fired so far.
    pub fn fired_put_crashes(&self) -> u64 {
        self.fired_put_crashes.load(Ordering::Relaxed)
    }

    /// Disarm everything (cluster- and engine-level), so no leftover armed
    /// fault can leak into a verification phase.
    pub fn disarm_all(&self) {
        self.crash_next_put.store(false, Ordering::Release);
        self.lsm.disarm_all();
    }

    /// True if any fault (cluster- or engine-level) is still armed.
    pub fn anything_armed(&self) -> bool {
        self.crash_next_put.load(Ordering::Acquire) || self.lsm.anything_armed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_trigger_fires_once() {
        let p = FaultPlan::default();
        assert!(!p.take_crash_next_put());
        p.arm_crash_on_next_put();
        assert!(p.anything_armed());
        assert!(p.take_crash_next_put());
        assert!(!p.take_crash_next_put());
        assert_eq!(p.fired_put_crashes(), 1);
    }

    #[test]
    fn disarm_covers_both_levels() {
        let p = FaultPlan::default();
        p.arm_crash_on_next_put();
        p.lsm().arm_fsync_failures(3);
        p.disarm_all();
        assert!(!p.anything_armed());
        assert!(!p.lsm().take_fsync_failure());
    }
}

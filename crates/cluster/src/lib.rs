//! # diff-index-cluster
//!
//! An in-process, multi-region, HBase-like distributed store built on the
//! [`diff_index_lsm`] engine — the substrate the Diff-Index schemes run on.
//!
//! What it models (paper §2.2, Figure 3):
//!
//! * tables partitioned into **regions** by key range, each region one LSM
//!   tree with its own WAL;
//! * **region servers** hosting regions, each with a monotonic
//!   millisecond timestamp oracle;
//! * a **client library** that routes requests by cached partition map;
//! * **coprocessors** ([`TableObserver`]) intercepting puts, deletes,
//!   flushes and WAL replays — the extension point Diff-Index plugs into;
//! * **failure injection + master recovery**: crash a server, reassign its
//!   regions, recover their state by WAL replay.
//!
//! Durability is real (files + WAL on disk); the network is not simulated
//! here — region-level operations are counted as RPC proxies, and the
//! latency model lives in `diff-index-sim`.

#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod coproc;
pub mod encoding;
pub mod error;
pub mod fanout;
pub mod faults;
pub mod health;
pub mod keyspace;

pub use cluster::{
    fencing_disabled, set_disable_fencing, Cluster, ClusterOptions, DispatchSnapshot, PutOutcome,
    RecoveryStats, RowGroup, WeakCluster,
};
pub use faults::FaultPlan;
pub use coproc::{ColumnValue, ReplayedOp, TableObserver};
pub use fanout::FanoutPool;
pub use error::{ClusterError, Result};
pub use health::{HealthMetrics, HealthMonitor, HealthOptions, HealthState};
pub use keyspace::{PartitionMap, RegionId, RegionSpec, ServerId};

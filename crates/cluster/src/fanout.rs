//! A small shared fan-out pool for parallelizing independent region
//! operations: observer dispatch across index specs, SU2 ∥ SU3/SU4 inside a
//! sync index update, and per-region stages of batched puts.
//!
//! Why not one thread per task: an indexed put fans out 2–4 sub-operations
//! that each take tens to hundreds of microseconds, so a ~25 µs thread
//! spawn per sub-operation would eat the winnings. The pool keeps a fixed
//! set of workers and a submission queue instead.
//!
//! Deadlock freedom: tasks may themselves fan out (a batched put fans out
//! per region; each region's observers fan out per spec; each sync update
//! fans out SU2 vs SU3/SU4). With a bounded pool that nesting can exhaust
//! every worker, so a blocked [`FanoutPool::run`] caller does not just
//! park — it **helps**, repeatedly stealing queued tasks (from any batch)
//! and running them inline until its own batch completes. Progress is
//! therefore guaranteed even with zero workers.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that the queue is non-empty (or shutting down).
    work_cv: Condvar,
    shutdown: Mutex<bool>,
}

/// Fixed-size helper pool; cheap to clone, shuts down when the last clone
/// drops.
pub struct FanoutPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FanoutPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutPool").field("workers", &self.workers.len()).finish()
    }
}

/// Per-batch completion state: results slots plus a done-count the caller
/// can wait on.
struct Batch<T> {
    results: Mutex<Vec<Option<T>>>,
    done: AtomicUsize,
    done_mutex: Mutex<()>,
    done_cv: Condvar,
}

impl FanoutPool {
    /// Pool sized for the host (between 2 and 8 workers).
    pub fn new_default() -> Self {
        let n = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        Self::new(n.clamp(2, 8))
    }

    /// Pool with exactly `workers` background threads (0 is legal: every
    /// task then runs on the threads that call [`FanoutPool::run`]).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fanout-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn fanout worker")
            })
            .collect();
        Self { shared, workers: handles }
    }

    /// Submit one job without waiting for its completion — fire-and-forget
    /// dispatch. The network server pipelines per-connection requests this
    /// way: the connection reader thread keeps decoding frames while queued
    /// requests execute on the pool. Requires a pool with at least one
    /// worker (the default pool always has ≥ 2); with zero workers the job
    /// would only run when some [`FanoutPool::run`] caller steals it.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.queue.lock().push_back(Box::new(job));
        self.shared.work_cv.notify_all();
    }

    /// Run every task, in parallel where workers are free, and return their
    /// results in task order. The calling thread always executes at least
    /// one task itself and steals queued work while waiting, so this never
    /// deadlocks on pool capacity.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        match n {
            0 => return Vec::new(),
            1 => {
                let task = tasks.into_iter().next().expect("one task");
                return vec![task()];
            }
            _ => {}
        }
        let batch = Arc::new(Batch::<T> {
            results: Mutex::new((0..n).map(|_| None).collect()),
            done: AtomicUsize::new(0),
            done_mutex: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        let mut tasks = tasks.into_iter().enumerate();
        // Keep the first task for this thread; queue the rest.
        let (first_idx, first_task) = tasks.next().expect("n >= 2");
        {
            let mut queue = self.shared.queue.lock();
            for (i, task) in tasks {
                let batch = Arc::clone(&batch);
                queue.push_back(Box::new(move || {
                    // A panicking task must still count as done, or the
                    // caller would wait forever; the missing result panics
                    // on the *caller's* thread instead when collected.
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                        Ok(v) => batch.complete(i, v),
                        Err(_) => batch.abandon(),
                    }
                }));
            }
        }
        self.shared.work_cv.notify_all();
        batch.complete(first_idx, first_task());

        // Help until the batch is done: steal any queued job (ours or a
        // nested batch's — running either makes global progress), parking
        // only briefly when the queue is empty.
        while batch.done.load(Ordering::Acquire) < n {
            let stolen = self.shared.queue.lock().pop_front();
            match stolen {
                Some(job) => job(),
                None => {
                    let mut guard = batch.done_mutex.lock();
                    if batch.done.load(Ordering::Acquire) < n {
                        batch.done_cv.wait_for(&mut guard, Duration::from_millis(1));
                    }
                }
            }
        }
        let mut slots = batch.results.lock();
        slots.iter_mut().map(|s| s.take().expect("fan-out task panicked")).collect()
    }
}

impl<T> Batch<T> {
    fn complete(&self, index: usize, value: T) {
        self.results.lock()[index] = Some(value);
        self.bump_done();
    }

    /// Count a task as finished without a result (it panicked).
    fn abandon(&self) {
        self.bump_done();
    }

    fn bump_done(&self) {
        self.done.fetch_add(1, Ordering::Release);
        let _guard = self.done_mutex.lock();
        self.done_cv.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            queue.pop_front()
        };
        match job {
            Some(job) => job(),
            None => {
                let mut down = shared.shutdown.lock();
                if *down {
                    return;
                }
                // Re-check the queue under no lock-order hazard: a producer
                // enqueues then notifies, so a missed wakeup only costs one
                // timeout tick.
                shared.work_cv.wait_for(&mut down, Duration::from_millis(10));
                if *down {
                    return;
                }
            }
        }
    }
}

impl Drop for FanoutPool {
    fn drop(&mut self) {
        *self.shared.shutdown.lock() = true;
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_tasks_and_preserves_order() {
        let pool = FanoutPool::new(4);
        let out = pool.run((0..32).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = FanoutPool::new(2);
        assert_eq!(pool.run(Vec::<fn() -> u32>::new()), Vec::<u32>::new());
        assert_eq!(pool.run(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn zero_worker_pool_still_completes() {
        let pool = FanoutPool::new(0);
        let out = pool.run((0..8).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(out.len(), 8);
        assert_eq!(out[7], 8);
    }

    #[test]
    fn nested_fanout_does_not_deadlock() {
        let pool = Arc::new(FanoutPool::new(2));
        // Each outer task fans out again; with 2 workers and 4 outer tasks
        // the inner batches can only finish if blocked callers help.
        let outer: Vec<_> = (0..4)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner = pool.run((0..4).map(|j| move || i * 10 + j).collect::<Vec<_>>());
                    inner.into_iter().sum::<i32>()
                }
            })
            .collect();
        let sums = pool.run(outer);
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn tasks_actually_run_concurrently() {
        let pool = FanoutPool::new(4);
        let t0 = std::time::Instant::now();
        pool.run(
            (0..4)
                .map(|_| move || std::thread::sleep(Duration::from_millis(40)))
                .collect::<Vec<_>>(),
        );
        // Serial would be 160 ms; parallel should be well under 120 ms.
        assert!(
            t0.elapsed() < Duration::from_millis(120),
            "fan-out took {:?}, expected parallel execution",
            t0.elapsed()
        );
    }

    #[test]
    fn spawned_jobs_run_without_a_waiting_caller() {
        let pool = FanoutPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let t0 = std::time::Instant::now();
        while hits.load(Ordering::SeqCst) < 16 {
            assert!(t0.elapsed() < Duration::from_secs(5), "spawned jobs never ran");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn panicking_task_does_not_wedge_other_batches() {
        let pool = Arc::new(FanoutPool::new(2));
        let p = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // The panicking task is queued, so it may run on a worker;
                // the caller must still unwind instead of hanging.
                p.run(vec![|| (), || panic!("boom")]);
            }));
        });
        let _ = t.join(); // the panicked helper thread must not poison the pool
        let out = pool.run(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }
}

//! Order-preserving key encodings.
//!
//! The cluster stores HBase-style `(row, column)` cells inside a flat LSM
//! keyspace, and Diff-Index stores `value ⊕ rowkey` concatenations as index
//! row keys (§4, "Remark"). Both need an encoding where the concatenation of
//! variable-length parts still sorts like the tuple of parts — otherwise
//! range scans over a prefix would be wrong.
//!
//! We use terminated escaping: inside a part every `0x00` byte becomes
//! `0x00 0x01`, and the part ends with the terminator `0x00 0x00`. Because
//! the escape's second byte (`0x01`) is strictly greater than the
//! terminator's (`0x00`), lexicographic order of encodings equals
//! lexicographic order of the original byte strings, and a decoded stream is
//! unambiguous.

use bytes::{BufMut, Bytes, BytesMut};

/// Append the escaped, terminated encoding of `part` to `out`.
pub fn encode_part(out: &mut BytesMut, part: &[u8]) {
    for &b in part {
        if b == 0 {
            out.put_u8(0);
            out.put_u8(1);
        } else {
            out.put_u8(b);
        }
    }
    out.put_u8(0);
    out.put_u8(0);
}

/// Encode a single part into a standalone buffer.
pub fn encode_one(part: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(part.len() + 2);
    encode_part(&mut out, part);
    out.freeze()
}

/// Escape `part` WITHOUT the terminator. Because escaping maps each byte
/// independently, `escape_no_term(a ++ b) == escape_no_term(a) ++
/// escape_no_term(b)`; the escaped form of a row-key *prefix* is therefore a
/// byte prefix of the escaped form of every row key extending it — the
/// property Diff-Index's `getByIndex` prefix scans rely on.
pub fn escape_no_term(part: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(part.len());
    for &b in part {
        if b == 0 {
            out.put_u8(0);
            out.put_u8(1);
        } else {
            out.put_u8(b);
        }
    }
    out.freeze()
}

/// Decode one part from the front of `buf`, returning the part and the
/// number of encoded bytes consumed. `None` on malformed input.
pub fn decode_part(buf: &[u8]) -> Option<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    loop {
        let b = *buf.get(i)?;
        if b != 0 {
            out.push(b);
            i += 1;
            continue;
        }
        match *buf.get(i + 1)? {
            0 => return Some((out, i + 2)), // terminator
            1 => {
                out.push(0);
                i += 2;
            }
            _ => return None,
        }
    }
}

/// The exclusive upper bound for scanning all keys that start with
/// `prefix` (where `prefix` is an encoded part or concatenation of parts):
/// the smallest byte string greater than every extension of `prefix`.
pub fn prefix_end(prefix: &[u8]) -> Option<Bytes> {
    let mut end = prefix.to_vec();
    while let Some(&last) = end.last() {
        if last < 0xFF {
            *end.last_mut().unwrap() += 1;
            return Some(Bytes::from(end));
        }
        end.pop();
    }
    None // prefix was all 0xFF: unbounded
}

/// Encode an HBase-style cell key: `row` part then raw column bytes.
/// All cells of a row group together, ordered by column.
pub fn cell_key(row: &[u8], column: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(row.len() + column.len() + 2);
    encode_part(&mut out, row);
    out.extend_from_slice(column);
    out.freeze()
}

/// Decode a cell key back into `(row, column)`.
pub fn decode_cell_key(key: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let (row, used) = decode_part(key)?;
    Some((row, key[used..].to_vec()))
}

/// Start of the cell-key range covering every column of `row`.
pub fn row_start(row: &[u8]) -> Bytes {
    encode_one(row)
}

/// Exclusive end of the cell-key range covering every column of `row`.
pub fn row_end(row: &[u8]) -> Bytes {
    // The terminator is 0x00 0x00; bumping the second byte to 0x01 bounds
    // every possible column suffix.
    let enc = encode_one(row);
    prefix_end(&enc).expect("terminated encoding never ends in 0xFF")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for part in [&b"hello"[..], b"", b"\x00", b"a\x00b", b"\x00\x00", b"\xff\xfe"] {
            let enc = encode_one(part);
            let (dec, used) = decode_part(&enc).unwrap();
            assert_eq!(dec, part);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn encoding_preserves_order() {
        let mut parts: Vec<&[u8]> =
            vec![b"", b"\x00", b"\x00\x00", b"\x01", b"a", b"a\x00", b"a\x00a", b"aa", b"b"];
        parts.sort();
        let encoded: Vec<Bytes> = parts.iter().map(|p| encode_one(p)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "order broken: {:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn concatenated_parts_sort_tuple_wise() {
        // (a, b) < (aa, a) because "a" < "aa" — even though the raw
        // concatenations "ab" vs "aaa" would sort the other way.
        let mut x = BytesMut::new();
        encode_part(&mut x, b"a");
        encode_part(&mut x, b"b");
        let mut y = BytesMut::new();
        encode_part(&mut y, b"aa");
        encode_part(&mut y, b"a");
        assert!(x.freeze() < y.freeze());
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_part(b"").is_none());
        assert!(decode_part(b"abc").is_none(), "missing terminator");
        assert!(decode_part(b"a\x00\x05b\x00\x00").is_none(), "bad escape");
    }

    #[test]
    fn prefix_end_bounds_extensions() {
        let p = encode_one(b"user");
        let end = prefix_end(&p).unwrap();
        let longer = cell_key(b"user", b"col1");
        assert!(longer.as_ref() >= p.as_ref());
        assert!(longer < end);
        // A different row is outside the bound:
        let other = encode_one(b"uses");
        assert!(other >= end || other < p);
    }

    #[test]
    fn prefix_end_all_ff_is_none() {
        assert!(prefix_end(&[0xFF, 0xFF]).is_none());
        assert_eq!(prefix_end(&[0x01, 0xFF]).unwrap(), Bytes::from_static(&[0x02]));
    }

    #[test]
    fn cell_key_roundtrip_and_grouping() {
        let k1 = cell_key(b"row1", b"colA");
        let k2 = cell_key(b"row1", b"colB");
        let k3 = cell_key(b"row2", b"colA");
        assert!(k1 < k2 && k2 < k3);
        assert_eq!(decode_cell_key(&k1).unwrap(), (b"row1".to_vec(), b"colA".to_vec()));
        // Rows with embedded zero bytes stay unambiguous:
        let k = cell_key(b"r\x00w", b"c");
        assert_eq!(decode_cell_key(&k).unwrap(), (b"r\x00w".to_vec(), b"c".to_vec()));
    }

    #[test]
    fn row_range_covers_exactly_one_row() {
        let start = row_start(b"row1");
        let end = row_end(b"row1");
        for col in [&b""[..], b"a", b"\xff\xff"] {
            let k = cell_key(b"row1", col);
            assert!(k >= start && k < end, "col {col:?} escaped the row range");
        }
        assert!(cell_key(b"row0", b"z") < start);
        assert!(cell_key(b"row11", b"") >= end || cell_key(b"row11", b"") < start);
        // "row11" must be OUTSIDE [start, end): check explicitly.
        assert!(cell_key(b"row11", b"a") >= end);
        assert!(cell_key(b"row2", b"") >= end);
    }
}

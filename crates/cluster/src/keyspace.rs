//! Key-space partitioning: regions and the partition map clients route with.
//!
//! A table's (encoded) key space is split into contiguous regions; each
//! region is served by one region server (Figure 3 of the paper). The client
//! library caches the partition map and routes each request to the right
//! server — there is no per-request master lookup.

use bytes::Bytes;

/// Identifier of a region within a table.
pub type RegionId = u32;

/// Identifier of a region server.
pub type ServerId = u32;

/// A contiguous slice of a table's key space: `[start, end)`, where an empty
/// `end` means "to infinity".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region id, unique within the table.
    pub id: RegionId,
    /// Inclusive start key (encoded); empty = from the beginning.
    pub start: Bytes,
    /// Exclusive end key (encoded); `None` = to the end.
    pub end: Option<Bytes>,
}

impl RegionSpec {
    /// True if `key` falls inside this region.
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.start.as_ref()
            && match &self.end {
                Some(e) => key < e.as_ref(),
                None => true,
            }
    }
}

/// The partition map of one table: ordered regions plus their current
/// server assignment.
#[derive(Debug, Clone, Default)]
pub struct PartitionMap {
    /// Regions in key order. Invariant: `regions[0].start` is empty, each
    /// `end` equals the next region's `start`, and the last `end` is `None`.
    regions: Vec<RegionSpec>,
    /// `assignment[i]` = server currently hosting `regions[i]`.
    assignment: Vec<ServerId>,
    /// `epochs[i]` = fencing epoch of `regions[i]`'s current assignment.
    /// Starts at 1 and is bumped every time the region moves, so a write
    /// stamped with an older epoch provably predates the current assignment
    /// and must be rejected (split-brain guard, §5.3 + HBase's region-server
    /// fencing via ZooKeeper epochs).
    epochs: Vec<u64>,
}

impl PartitionMap {
    /// Build a map from explicit split points (encoded keys). `n` split
    /// points produce `n + 1` regions, assigned round-robin over `servers`.
    pub fn from_splits(splits: &[Bytes], servers: &[ServerId]) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        let mut sorted = splits.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut regions = Vec::with_capacity(sorted.len() + 1);
        let mut start = Bytes::new();
        for (i, s) in sorted.iter().enumerate() {
            regions.push(RegionSpec { id: i as RegionId, start, end: Some(s.clone()) });
            start = s.clone();
        }
        regions.push(RegionSpec { id: sorted.len() as RegionId, start, end: None });
        let assignment: Vec<ServerId> =
            (0..regions.len()).map(|i| servers[i % servers.len()]).collect();
        let epochs = vec![1; regions.len()];
        Self { regions, assignment, epochs }
    }

    /// Evenly split the *byte* key space into `n` regions using single-byte
    /// prefixes — adequate when row keys are hashed or uniformly distributed
    /// (the YCSB workload's `user<hash>` keys are).
    pub fn even(n: usize, servers: &[ServerId]) -> Self {
        assert!(n >= 1);
        let splits: Vec<Bytes> = (1..n)
            .map(|i| {
                let b = ((i * 256) / n) as u8;
                Bytes::copy_from_slice(&[b])
            })
            .collect();
        Self::from_splits(&splits, servers)
    }

    /// Region containing `key`.
    pub fn locate(&self, key: &[u8]) -> &RegionSpec {
        let idx = self.locate_idx(key);
        &self.regions[idx]
    }

    fn locate_idx(&self, key: &[u8]) -> usize {
        let pp = self.regions.partition_point(|r| r.start.as_ref() <= key);
        pp.saturating_sub(1)
    }

    /// Server hosting the region that contains `key`.
    pub fn server_for(&self, key: &[u8]) -> ServerId {
        self.assignment[self.locate_idx(key)]
    }

    /// Server hosting region `id`.
    pub fn server_of_region(&self, id: RegionId) -> Option<ServerId> {
        self.regions.iter().position(|r| r.id == id).map(|i| self.assignment[i])
    }

    /// Fencing epoch of the region that contains `key`.
    pub fn epoch_for(&self, key: &[u8]) -> u64 {
        self.epochs[self.locate_idx(key)]
    }

    /// Fencing epoch of region `id`.
    pub fn epoch_of_region(&self, id: RegionId) -> Option<u64> {
        self.regions.iter().position(|r| r.id == id).map(|i| self.epochs[i])
    }

    /// All regions (in key order) with their assignments.
    pub fn regions(&self) -> impl Iterator<Item = (&RegionSpec, ServerId)> {
        self.regions.iter().zip(self.assignment.iter().copied())
    }

    /// All regions (in key order) with assignment and fencing epoch — what
    /// the wire-level partition map carries.
    pub fn entries(&self) -> impl Iterator<Item = (&RegionSpec, ServerId, u64)> {
        self.regions
            .iter()
            .zip(self.assignment.iter().copied())
            .zip(self.epochs.iter().copied())
            .map(|((r, s), e)| (r, s, e))
    }

    /// Regions overlapping the key range `[start, end)`.
    pub fn regions_in_range<'a>(
        &'a self,
        start: &'a [u8],
        end: Option<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a RegionSpec, ServerId)> + 'a {
        self.regions().filter(move |(r, _)| {
            let after_start = match &r.end {
                Some(e) => e.as_ref() > start,
                None => true,
            };
            let before_end = match end {
                Some(e) => r.start.as_ref() < e,
                None => true,
            };
            after_start && before_end
        })
    }

    /// Reassign every region on `from` to servers drawn round-robin from
    /// `to` (master failover, §5.3). Returns the region ids that moved.
    /// Every moved region's fencing epoch is bumped, so writes stamped under
    /// the previous assignment become rejectable.
    pub fn reassign(&mut self, from: ServerId, to: &[ServerId]) -> Vec<RegionId> {
        assert!(!to.is_empty(), "no surviving servers");
        let mut moved = Vec::new();
        let mut rr = 0usize;
        for (i, owner) in self.assignment.iter_mut().enumerate() {
            if *owner == from {
                *owner = to[rr % to.len()];
                rr += 1;
                self.epochs[i] += 1;
                moved.push(self.regions[i].id);
            }
        }
        moved
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Always false: a map has at least one region.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_splits_partitions_cover_space() {
        let m = PartitionMap::from_splits(
            &[Bytes::from_static(b"g"), Bytes::from_static(b"p")],
            &[0, 1, 2],
        );
        assert_eq!(m.len(), 3);
        assert_eq!(m.locate(b"a").id, 0);
        assert_eq!(m.locate(b"g").id, 1, "split key belongs to the right region");
        assert_eq!(m.locate(b"k").id, 1);
        assert_eq!(m.locate(b"p").id, 2);
        assert_eq!(m.locate(b"zz").id, 2);
        assert_eq!(m.locate(b"").id, 0);
    }

    #[test]
    fn round_robin_assignment() {
        let m = PartitionMap::from_splits(
            &[Bytes::from_static(b"b"), Bytes::from_static(b"c"), Bytes::from_static(b"d")],
            &[10, 20],
        );
        let servers: Vec<ServerId> = m.regions().map(|(_, s)| s).collect();
        assert_eq!(servers, vec![10, 20, 10, 20]);
    }

    #[test]
    fn even_split_locates_bytes() {
        let m = PartitionMap::even(4, &[0, 1, 2, 3]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.locate(&[0x00]).id, 0);
        assert_eq!(m.locate(&[0x40]).id, 1);
        assert_eq!(m.locate(&[0x80]).id, 2);
        assert_eq!(m.locate(&[0xC0]).id, 3);
    }

    #[test]
    fn even_split_single_region() {
        let m = PartitionMap::even(1, &[7]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.server_for(b"anything"), 7);
    }

    #[test]
    fn regions_in_range_selects_overlaps() {
        let m = PartitionMap::from_splits(
            &[Bytes::from_static(b"g"), Bytes::from_static(b"p")],
            &[0],
        );
        let ids: Vec<RegionId> =
            m.regions_in_range(b"h", Some(b"i")).map(|(r, _)| r.id).collect();
        assert_eq!(ids, vec![1]);
        let ids: Vec<RegionId> =
            m.regions_in_range(b"a", Some(b"z")).map(|(r, _)| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let ids: Vec<RegionId> = m.regions_in_range(b"p", None).map(|(r, _)| r.id).collect();
        assert_eq!(ids, vec![2]);
        // Range ending exactly at a region start excludes that region.
        let ids: Vec<RegionId> =
            m.regions_in_range(b"a", Some(b"g")).map(|(r, _)| r.id).collect();
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn reassign_moves_only_victims() {
        let mut m = PartitionMap::from_splits(
            &[Bytes::from_static(b"g"), Bytes::from_static(b"p")],
            &[1, 2, 1],
        );
        let moved = m.reassign(1, &[2, 3]);
        assert_eq!(moved, vec![0, 2]);
        let servers: Vec<ServerId> = m.regions().map(|(_, s)| s).collect();
        assert_eq!(servers, vec![2, 2, 3]);
    }

    #[test]
    fn epochs_start_at_one_and_bump_only_for_moved_regions() {
        let mut m = PartitionMap::from_splits(
            &[Bytes::from_static(b"g"), Bytes::from_static(b"p")],
            &[1, 2, 1],
        );
        assert!(m.entries().all(|(_, _, e)| e == 1));
        let moved = m.reassign(1, &[2, 3]);
        assert_eq!(moved, vec![0, 2]);
        assert_eq!(m.epoch_of_region(0), Some(2));
        assert_eq!(m.epoch_of_region(1), Some(1), "unmoved region keeps its epoch");
        assert_eq!(m.epoch_of_region(2), Some(2));
        // A second failover bumps again: epochs are monotonic per region.
        // Servers are now [2, 2, 3]; killing 2 moves regions 0 and 1.
        m.reassign(2, &[3]);
        assert_eq!(m.epoch_of_region(0), Some(3));
        assert_eq!(m.epoch_of_region(1), Some(2));
        assert_eq!(m.epoch_of_region(2), Some(2), "region on the survivor is untouched");
        assert_eq!(m.epoch_for(b"a"), 3);
        assert_eq!(m.epoch_for(b"h"), 2);
    }

    #[test]
    fn contains_matches_locate() {
        let m = PartitionMap::even(8, &[0]);
        for key in [&[0u8][..], &[0x33], &[0x7f], &[0xff, 0xff]] {
            let r = m.locate(key);
            assert!(r.contains(key));
        }
    }
}

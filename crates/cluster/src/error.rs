//! Cluster-level error type.

use diff_index_lsm::LsmError;
use std::fmt;

/// Errors from cluster operations.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying storage engine failure.
    Storage(LsmError),
    /// The named table does not exist.
    NoSuchTable(String),
    /// The region server hosting the target region is down and its regions
    /// have not been reassigned yet (call `Cluster::recover`).
    ServerDown(u32),
    /// Generic unavailability (e.g. operating on a crashed cluster).
    Unavailable(String),
    /// The contacted region server does not host the target row's region —
    /// the caller's partition map is stale (HBase's `NotServingRegionException`).
    /// Carries the server currently hosting the region, so clients can
    /// refresh their map and re-route.
    NotServing {
        /// Server currently hosting the target region.
        owner: u32,
    },
    /// The write was stamped with a region epoch older than the region's
    /// current assignment: the sender's view of the cluster predates a
    /// failover. This is the fencing rejection that keeps a "zombie" server
    /// (declared dead, regions reassigned, but still reachable) from ever
    /// getting a write accepted (§5.3 split-brain guard). Carries the
    /// current owner and epoch so clients can refresh their map and re-route.
    StaleEpoch {
        /// Server currently hosting the target region.
        owner: u32,
        /// The region's current fencing epoch.
        epoch: u64,
    },
    /// A network request did not complete within its deadline. The outcome
    /// of the operation is unknown (it may or may not have been applied).
    Timeout(String),
    /// Transport-level failure (connection reset, broken pipe, refused).
    /// Like [`ClusterError::Timeout`], the operation's outcome is unknown.
    Io(String),
    /// Malformed or incompatible wire data. Never retryable: resending the
    /// same bytes cannot help.
    Protocol(String),
}

impl ClusterError {
    /// True for errors a remote client may transparently retry (after
    /// refreshing its partition map where applicable): the failure is
    /// transient routing/transport trouble, not a semantic rejection.
    ///
    /// `Timeout` and `Io` leave the outcome of the attempt unknown, so only
    /// idempotent requests should be retried on them — every Diff-Index
    /// client operation is (puts re-executed with a fresh timestamp converge
    /// to the same index state, reads are pure).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClusterError::ServerDown(_)
                | ClusterError::NotServing { .. }
                | ClusterError::StaleEpoch { .. }
                | ClusterError::Timeout(_)
                | ClusterError::Io(_)
        )
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Storage(e) => write!(f, "storage: {e}"),
            ClusterError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            ClusterError::ServerDown(s) => write!(f, "region server {s} is down"),
            ClusterError::Unavailable(m) => write!(f, "unavailable: {m}"),
            ClusterError::NotServing { owner } => {
                write!(f, "region not served here (moved to server {owner})")
            }
            ClusterError::StaleEpoch { owner, epoch } => {
                write!(f, "write fenced: stale region epoch (current epoch {epoch} on server {owner})")
            }
            ClusterError::Timeout(m) => write!(f, "request timed out: {m}"),
            ClusterError::Io(m) => write!(f, "transport error: {m}"),
            ClusterError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LsmError> for ClusterError {
    fn from(e: LsmError) -> Self {
        ClusterError::Storage(e)
    }
}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusterError::NoSuchTable("t".into()).to_string().contains("t"));
        assert!(ClusterError::ServerDown(3).to_string().contains('3'));
        assert!(ClusterError::Unavailable("x".into()).to_string().contains('x'));
        assert!(ClusterError::NotServing { owner: 7 }.to_string().contains('7'));
        let fenced = ClusterError::StaleEpoch { owner: 2, epoch: 9 }.to_string();
        assert!(fenced.contains("fenced") && fenced.contains('9'));
        assert!(ClusterError::Timeout("t".into()).to_string().contains("timed out"));
        assert!(ClusterError::Io("reset".into()).to_string().contains("reset"));
        assert!(ClusterError::Protocol("bad".into()).to_string().contains("bad"));
        let e = ClusterError::from(LsmError::Corruption("c".into()));
        assert!(e.to_string().contains("c"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryability_partitions_the_taxonomy() {
        for e in [
            ClusterError::ServerDown(1),
            ClusterError::NotServing { owner: 0 },
            ClusterError::StaleEpoch { owner: 0, epoch: 2 },
            ClusterError::Timeout("slow".into()),
            ClusterError::Io("reset".into()),
        ] {
            assert!(e.is_retryable(), "{e} must be retryable");
        }
        for e in [
            ClusterError::Storage(LsmError::Corruption("c".into())),
            ClusterError::NoSuchTable("t".into()),
            ClusterError::Unavailable("u".into()),
            ClusterError::Protocol("p".into()),
        ] {
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }
}

//! Cluster-level error type.

use diff_index_lsm::LsmError;
use std::fmt;

/// Errors from cluster operations.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying storage engine failure.
    Storage(LsmError),
    /// The named table does not exist.
    NoSuchTable(String),
    /// The region server hosting the target region is down and its regions
    /// have not been reassigned yet (call `Cluster::recover`).
    ServerDown(u32),
    /// Generic unavailability (e.g. operating on a crashed cluster).
    Unavailable(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Storage(e) => write!(f, "storage: {e}"),
            ClusterError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            ClusterError::ServerDown(s) => write!(f, "region server {s} is down"),
            ClusterError::Unavailable(m) => write!(f, "unavailable: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LsmError> for ClusterError {
    fn from(e: LsmError) -> Self {
        ClusterError::Storage(e)
    }
}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusterError::NoSuchTable("t".into()).to_string().contains("t"));
        assert!(ClusterError::ServerDown(3).to_string().contains('3'));
        assert!(ClusterError::Unavailable("x".into()).to_string().contains('x'));
        let e = ClusterError::from(LsmError::Corruption("c".into()));
        assert!(e.to_string().contains("c"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
